package protocol

// flatmap is a minimal open-addressing hash table from int32 keys to V,
// tuned for the protocol programs' per-node dedup tables (ID -> hops, ID ->
// size). The Go built-in map dominated the phases' allocation profile — one
// map header plus buckets per node per phase, rehashed as floods grow the
// tables — while this layout is one flat slot array that a program reuses
// across its whole run. Key and value share a slot, so a lookup touches one
// cache line, and a slot array of int32-based values contains no pointers
// for the GC to scan.
//
// Keys must be non-negative (node IDs). Linear probing over a
// power-of-two table, grown at 3/4 load; the zero flatmap is ready to use.
type flatmap[V any] struct {
	slots []fslot[V]
	used  int
}

// fslot is one table slot; key -1 marks it empty.
type fslot[V any] struct {
	key int32
	val V
}

// hash32 is Fibonacci hashing with an avalanche tail — dense sequential
// node IDs spread uniformly over the table.
func hash32(k int32) uint32 {
	x := uint32(k) * 2654435761
	x ^= x >> 16
	return x
}

// get returns the value stored under k.
func (m *flatmap[V]) get(k int32) (v V, ok bool) {
	if m.used == 0 {
		return v, false
	}
	mask := uint32(len(m.slots) - 1)
	for i := hash32(k) & mask; ; i = (i + 1) & mask {
		switch m.slots[i].key {
		case k:
			return m.slots[i].val, true
		case -1:
			return v, false
		}
	}
}

// put stores v under k, inserting or overwriting.
func (m *flatmap[V]) put(k int32, v V) {
	if m.used*4 >= len(m.slots)*3 {
		m.grow()
	}
	mask := uint32(len(m.slots) - 1)
	for i := hash32(k) & mask; ; i = (i + 1) & mask {
		switch m.slots[i].key {
		case k:
			m.slots[i].val = v
			return
		case -1:
			m.slots[i] = fslot[V]{key: k, val: v}
			m.used++
			return
		}
	}
}

// len returns the number of stored keys.
func (m *flatmap[V]) len() int { return m.used }

// reserve sizes the table so n entries fit at a comfortable load factor
// without rehashing. The flooding programs call it once with their
// geometric neighborhood-size estimate (degree * radius^2), replacing the
// 16 -> 32 -> ... grow chain with a single allocation.
func (m *flatmap[V]) reserve(n int) {
	need := n*3/2 + 1
	size := 16
	for size < need {
		size *= 2
	}
	if size <= len(m.slots) {
		return
	}
	m.rehash(size)
}

// grow doubles the table (min 16 slots).
func (m *flatmap[V]) grow() {
	if len(m.slots) == 0 {
		m.rehash(16)
		return
	}
	m.rehash(len(m.slots) * 2)
}

// rehash moves the table to a fresh power-of-two size.
func (m *flatmap[V]) rehash(size int) {
	old := m.slots
	m.slots = make([]fslot[V], size)
	for i := range m.slots {
		m.slots[i].key = -1
	}
	mask := uint32(size - 1)
	for _, s := range old {
		if s.key == -1 {
			continue
		}
		for j := hash32(s.key) & mask; ; j = (j + 1) & mask {
			if m.slots[j].key == -1 {
				m.slots[j] = s
				break
			}
		}
	}
}
