package protocol

import "math"

// Packed wire formats for the four protocol phases. Every phase message is
// a batch of small fixed-width records, so instead of boxing a struct into
// an interface per transmission (the generic simnet.Envelope.Payload path),
// the programs pack records into []uint64 words and ship them with
// SendPacked/BroadcastPacked. The engine copies words into its round arenas
// — no per-message heap allocation survives a round.
//
// All IDs, hop counters, sizes and distances are non-negative int32 values,
// so a pair packs losslessly into one word as high<<32 | low. Election
// indexes are float64 and ride math.Float64bits, which is exact.
//
// The generic struct payloads remain supported by every program's Step as a
// fallback (the simnet API keeps the any-payload path for external
// programs); the packed kinds below are what the built-in phases emit.
const (
	// kindIDBatch: K-hop discovery. One word per entry: ID<<32 | hops.
	kindIDBatch uint8 = 1
	// kindSizeBatch: centrality flooding. Two words per entry:
	// ID<<32 | size, then hops.
	kindSizeBatch uint8 = 2
	// kindClaim: site election. Exactly two words: ID<<32 | hops, then
	// Float64bits(index).
	kindClaim uint8 = 3
	// kindVoronoiBatch: Voronoi flooding. One word per entry:
	// site<<32 | dist.
	kindVoronoiBatch uint8 = 4
)

// packPair packs two non-negative int32 values into one word.
func packPair(hi, lo int32) uint64 {
	return uint64(uint32(hi))<<32 | uint64(uint32(lo))
}

// unpackPair undoes packPair.
func unpackPair(w uint64) (hi, lo int32) {
	return int32(uint32(w >> 32)), int32(uint32(w))
}

// packClaim and unpackClaim code an election claim as two words.
func packClaim(c claim) (w0, w1 uint64) {
	return packPair(c.ID, c.Hops), math.Float64bits(c.Index)
}

func unpackClaim(w0, w1 uint64) claim {
	id, hops := unpackPair(w0)
	return claim{ID: id, Hops: hops, Index: math.Float64frombits(w1)}
}
