package protocol

import (
	"strings"
	"testing"

	"bfskel/internal/obs"
)

// TestRunOptsObservability pins the observed protocol run: every phase's
// per-round message counts sum to its Stats.Messages, the per-node send
// counters do too, and the trace contains the "protocol" root span plus one
// "phase.<name>" child span per phase, each carrying round events and the
// exact message/round totals.
func TestRunOptsObservability(t *testing.T) {
	g := pathGraph(24)
	ring := obs.NewRingSink(0)
	reg := obs.NewRegistry()
	res, err := RunOpts(g, 2, 2, 2, 1, Options{
		Tracer:        obs.NewTracer(ring),
		Metrics:       reg,
		RecordRounds:  true,
		RecordPerNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, st := range res.PhaseStats {
		name := PhaseNames[i]
		if len(st.PerRound) != st.Rounds+1 {
			t.Errorf("%s: %d per-round entries for %d rounds", name, len(st.PerRound), st.Rounds)
		}
		msgs := 0
		for _, r := range st.PerRound {
			msgs += r.Messages
		}
		if msgs != st.Messages {
			t.Errorf("%s: per-round messages sum to %d, Stats.Messages = %d", name, msgs, st.Messages)
		}
		sent := 0
		for _, s := range st.NodeSent {
			sent += s
		}
		if sent != st.Messages {
			t.Errorf("%s: NodeSent sums to %d, Stats.Messages = %d", name, sent, st.Messages)
		}
	}

	// Span taxonomy: one protocol root, one span per phase, ended with the
	// phase's exact totals.
	starts := make(map[string]int)
	endAttrs := make(map[string]map[string]any)
	for _, rec := range ring.Records() {
		switch rec.Kind {
		case obs.KindSpanStart:
			starts[rec.Name]++
		case obs.KindSpanEnd:
			attrs := make(map[string]any, len(rec.Attrs))
			for _, a := range rec.Attrs {
				attrs[a.Key] = a.Val
			}
			endAttrs[rec.Name] = attrs
		}
	}
	if starts["protocol"] != 1 {
		t.Errorf("protocol spans = %d, want 1", starts["protocol"])
	}
	for i, name := range PhaseNames {
		span := "phase." + name
		if starts[span] != 1 {
			t.Errorf("%s spans = %d, want 1", span, starts[span])
		}
		if got := endAttrs[span]["messages"]; got != res.PhaseStats[i].Messages {
			t.Errorf("%s end messages = %v, want %d", span, got, res.PhaseStats[i].Messages)
		}
		if got := endAttrs[span]["rounds"]; got != res.PhaseStats[i].Rounds {
			t.Errorf("%s end rounds = %v, want %d", span, got, res.PhaseStats[i].Rounds)
		}
	}

	// Metrics: the per-phase message counters mirror the stats.
	snap := reg.Snapshot()
	for i, name := range PhaseNames {
		key := obs.Label("bfskel_protocol_messages_total", "phase", name)
		if got := snap.Counters[key]; got != int64(res.PhaseStats[i].Messages) {
			t.Errorf("%s = %d, want %d", key, got, res.PhaseStats[i].Messages)
		}
	}
}

// TestRunOptsMatchesRun pins that observation is read-only: an instrumented
// run returns the same outputs and message/round totals as a plain one.
func TestRunOptsMatchesRun(t *testing.T) {
	g := pathGraph(24)
	plain, err := Run(g, 2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := RunOpts(g, 2, 2, 2, 1, Options{
		Tracer:        obs.NewTracer(obs.NewRingSink(0)),
		RecordRounds:  true,
		RecordPerNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Sites) != len(observed.Sites) {
		t.Fatalf("sites differ: %v vs %v", plain.Sites, observed.Sites)
	}
	for i := range plain.PhaseStats {
		p, o := plain.PhaseStats[i], observed.PhaseStats[i]
		if p.Messages != o.Messages || p.Rounds != o.Rounds {
			t.Errorf("%s: plain %d msgs/%d rounds, observed %d/%d",
				PhaseNames[i], p.Messages, p.Rounds, o.Messages, o.Rounds)
		}
	}
	if plain.TotalMessages() != observed.TotalMessages() {
		t.Errorf("total messages differ: %d vs %d", plain.TotalMessages(), observed.TotalMessages())
	}
}

// TestPhaseNamesMatchSpans keeps the PhaseNames list aligned with the span
// naming convention cmd/skeltrace greps for.
func TestPhaseNamesMatchSpans(t *testing.T) {
	for _, name := range PhaseNames {
		if strings.ContainsAny(name, " .") {
			t.Errorf("phase name %q would produce an ambiguous span name", name)
		}
	}
}
