// Package protocol implements phases 1-2 of the skeleton extraction
// pipeline as true distributed node programs running on the simnet
// simulator: controlled flooding for K-hop neighborhood sizes, the
// L-centrality exchange, critical-skeleton-node election, and the Voronoi
// flooding from the elected sites (paper Secs. III-A and III-B).
//
// The programs use wireless set-broadcasts — each node transmits once per
// round with everything it learned in the previous round — which yields the
// paper's message complexity of O((k+l+1)n) transmissions and a running
// time of O(sqrt(n)) rounds for the Voronoi flood.
//
// Results are bit-identical to the centralized implementation in package
// core (the tests cross-check them), so the rest of the pipeline can run on
// either substrate.
package protocol

import (
	"fmt"

	"bfskel/internal/core"
	"bfskel/internal/graph"
	"bfskel/internal/obs"
	"bfskel/internal/simnet"
)

// PhaseNames lists the four protocol phases in execution order; trace spans
// are named "phase.<name>".
var PhaseNames = [4]string{"neighborhood", "centrality", "election", "voronoi"}

// Engine re-exports the simnet round-engine selector so callers configuring
// a protocol run do not need to import simnet directly.
type Engine = simnet.Engine

// Engine selector values; see simnet.Engine.
const (
	EngineAuto     = simnet.EngineAuto
	EngineSerial   = simnet.EngineSerial
	EngineParallel = simnet.EngineParallel
)

// Result carries the distributed computation's outputs plus the per-phase
// simulation statistics.
type Result struct {
	// KHop is |N_K(p)| per node.
	KHop []int
	// Cent and Index follow Defs. 3 and 4.
	Cent  []float64
	Index []float64
	// Sites are the elected critical skeleton nodes.
	Sites []int32
	// Records are the per-node almost-equidistant site records with
	// reverse-path parents.
	Records [][]core.SiteDist
	// PhaseStats holds the simulation counters of the four protocol
	// phases, in order: neighborhood, centrality, election, voronoi.
	PhaseStats [4]simnet.Stats
}

// TotalMessages sums the transmissions over all phases.
func (r *Result) TotalMessages() int {
	total := 0
	for _, s := range r.PhaseStats {
		total += s.Messages
	}
	return total
}

// TotalRounds sums the rounds over all phases.
func (r *Result) TotalRounds() int {
	total := 0
	for _, s := range r.PhaseStats {
		total += s.Rounds
	}
	return total
}

// Options configures a protocol run beyond the radii.
type Options struct {
	// Jitter delays each transmission by a uniform 0..Jitter extra rounds;
	// Seed makes jittered runs reproducible (each phase derives its own
	// sub-seed).
	Jitter int
	Seed   int64
	// Tracer, when non-nil, wraps the run in a "protocol" span with one
	// "phase.<name>" child span per phase carrying per-round events —
	// the phase → round breakdown behind the paper's complexity claims.
	Tracer *obs.Tracer
	// Metrics, when non-nil, accumulates per-phase message/round counters.
	Metrics *obs.Registry
	// RecordRounds enables simnet per-round accounting; the per-round
	// stats land in Result.PhaseStats[i].PerRound.
	RecordRounds bool
	// RecordPerNode enables simnet per-node send/receive counters
	// (Result.PhaseStats[i].NodeSent/NodeRecv); with tracing on, each
	// phase span also carries a "nodes" event with the full counter
	// arrays, which cmd/skeltrace reduces to the hottest nodes.
	RecordPerNode bool
	// Engine selects the simnet round engine for every phase. The zero
	// value (EngineAuto) picks per phase by graph size; outputs and
	// statistics are identical either way — only cost differs.
	Engine Engine
}

// phaseOpts is the per-phase slice of Options handed to each phase runner.
type phaseOpts struct {
	jitter        int
	seed          int64
	span          *obs.Span
	recordRounds  bool
	recordPerNode bool
	engine        Engine
}

// configure applies the options to a freshly built simulator.
func (po phaseOpts) configure(sim *simnet.Sim) {
	sim.Jitter, sim.JitterSeed = po.jitter, po.seed
	sim.Span = po.span
	sim.RecordRounds = po.recordRounds
	sim.RecordPerNode = po.recordPerNode
	sim.Engine = po.engine
}

// Run executes the four protocol phases on the graph. k, l and scope are
// the effective radii (pass the values the centralized pipeline resolved,
// e.g. Result.EffectiveK/EffectiveScope, to compare runs); alpha is the
// segment-node slack.
func Run(g *graph.Graph, k, l, scope int, alpha int32) (*Result, error) {
	return RunOpts(g, k, l, scope, alpha, Options{})
}

// RunJittered is Run with per-message delivery jitter: each transmission is
// delayed by a uniform 0..jitter extra rounds (seeded). The protocols carry
// hop counters in their payloads with minimum-hop re-forwarding, so their
// outputs stay exact; only the message and round counts change. This
// probes the paper's informal synchrony assumption ("the message travels at
// approximately the same speed").
func RunJittered(g *graph.Graph, k, l, scope int, alpha int32, jitter int, seed int64) (*Result, error) {
	return RunOpts(g, k, l, scope, alpha, Options{Jitter: jitter, Seed: seed})
}

// RunOpts executes the four protocol phases with full observability
// control (see Options).
func RunOpts(g *graph.Graph, k, l, scope int, alpha int32, opts Options) (*Result, error) {
	if k < 1 || l < 1 || scope < 1 {
		return nil, fmt.Errorf("protocol: radii must be >= 1 (k=%d l=%d scope=%d)", k, l, scope)
	}
	if opts.Jitter < 0 {
		return nil, fmt.Errorf("protocol: jitter must be >= 0, got %d", opts.Jitter)
	}
	res := &Result{}
	root := opts.Tracer.StartSpan("protocol",
		obs.Int("nodes", g.N()), obs.Int("k", k), obs.Int("l", l),
		obs.Int("scope", scope), obs.Int("alpha", int(alpha)), obs.Int("jitter", opts.Jitter))

	// phase wraps one protocol phase: a "phase.<name>" child span during
	// the run, then stats bookkeeping into the result, trace and metrics.
	phase := func(i int, run func(po phaseOpts) (simnet.Stats, error)) error {
		name := PhaseNames[i]
		span := root.StartSpan("phase." + name)
		stats, err := run(phaseOpts{
			jitter:        opts.Jitter,
			seed:          opts.Seed + int64(i),
			span:          span,
			recordRounds:  opts.RecordRounds,
			recordPerNode: opts.RecordPerNode,
			engine:        opts.Engine,
		})
		res.PhaseStats[i] = stats
		if err != nil {
			span.End(obs.Str("error", err.Error()))
			root.End(obs.Str("error", err.Error()))
			return fmt.Errorf("%s phase: %w", name, err)
		}
		if opts.RecordPerNode && stats.NodeSent != nil {
			span.Event("nodes", obs.Any("sent", stats.NodeSent), obs.Any("recv", stats.NodeRecv))
		}
		span.End(obs.Int("messages", stats.Messages), obs.Int("rounds", stats.Rounds),
			obs.Str("engine", stats.Engine))
		if m := opts.Metrics; m != nil {
			m.Counter(obs.Label("bfskel_protocol_messages_total", "phase", name)).Add(int64(stats.Messages))
			m.Counter(obs.Label("bfskel_protocol_rounds_total", "phase", name)).Add(int64(stats.Rounds))
		}
		return nil
	}

	err := phase(0, func(po phaseOpts) (simnet.Stats, error) {
		khop, stats, err := runNeighborhood(g, k, po)
		res.KHop = khop
		return stats, err
	})
	if err == nil {
		err = phase(1, func(po phaseOpts) (simnet.Stats, error) {
			cent, index, stats, err := runCentrality(g, l, res.KHop, po)
			res.Cent, res.Index = cent, index
			return stats, err
		})
	}
	if err == nil {
		err = phase(2, func(po phaseOpts) (simnet.Stats, error) {
			sites, stats, err := runElection(g, scope, res.Index, po)
			res.Sites = sites
			return stats, err
		})
	}
	if err == nil {
		err = phase(3, func(po phaseOpts) (simnet.Stats, error) {
			records, stats, err := runVoronoi(g, res.Sites, alpha, po)
			res.Records = records
			return stats, err
		})
	}
	if err != nil {
		return nil, err
	}
	root.End(obs.Int("messages", res.TotalMessages()), obs.Int("rounds", res.TotalRounds()))
	return res, nil
}
