// Package protocol implements phases 1-2 of the skeleton extraction
// pipeline as true distributed node programs running on the simnet
// simulator: controlled flooding for K-hop neighborhood sizes, the
// L-centrality exchange, critical-skeleton-node election, and the Voronoi
// flooding from the elected sites (paper Secs. III-A and III-B).
//
// The programs use wireless set-broadcasts — each node transmits once per
// round with everything it learned in the previous round — which yields the
// paper's message complexity of O((k+l+1)n) transmissions and a running
// time of O(sqrt(n)) rounds for the Voronoi flood.
//
// Results are bit-identical to the centralized implementation in package
// core (the tests cross-check them), so the rest of the pipeline can run on
// either substrate.
package protocol

import (
	"fmt"

	"bfskel/internal/core"
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// Result carries the distributed computation's outputs plus the per-phase
// simulation statistics.
type Result struct {
	// KHop is |N_K(p)| per node.
	KHop []int
	// Cent and Index follow Defs. 3 and 4.
	Cent  []float64
	Index []float64
	// Sites are the elected critical skeleton nodes.
	Sites []int32
	// Records are the per-node almost-equidistant site records with
	// reverse-path parents.
	Records [][]core.SiteDist
	// PhaseStats holds the simulation counters of the four protocol
	// phases, in order: neighborhood, centrality, election, voronoi.
	PhaseStats [4]simnet.Stats
}

// TotalMessages sums the transmissions over all phases.
func (r *Result) TotalMessages() int {
	total := 0
	for _, s := range r.PhaseStats {
		total += s.Messages
	}
	return total
}

// TotalRounds sums the rounds over all phases.
func (r *Result) TotalRounds() int {
	total := 0
	for _, s := range r.PhaseStats {
		total += s.Rounds
	}
	return total
}

// Run executes the four protocol phases on the graph. k, l and scope are
// the effective radii (pass the values the centralized pipeline resolved,
// e.g. Result.EffectiveK/EffectiveScope, to compare runs); alpha is the
// segment-node slack.
func Run(g *graph.Graph, k, l, scope int, alpha int32) (*Result, error) {
	return RunJittered(g, k, l, scope, alpha, 0, 0)
}

// RunJittered is Run with per-message delivery jitter: each transmission is
// delayed by a uniform 0..jitter extra rounds (seeded). The protocols carry
// hop counters in their payloads with minimum-hop re-forwarding, so their
// outputs stay exact; only the message and round counts change. This
// probes the paper's informal synchrony assumption ("the message travels at
// approximately the same speed").
func RunJittered(g *graph.Graph, k, l, scope int, alpha int32, jitter int, seed int64) (*Result, error) {
	if k < 1 || l < 1 || scope < 1 {
		return nil, fmt.Errorf("protocol: radii must be >= 1 (k=%d l=%d scope=%d)", k, l, scope)
	}
	if jitter < 0 {
		return nil, fmt.Errorf("protocol: jitter must be >= 0, got %d", jitter)
	}
	res := &Result{}

	khop, stats, err := runNeighborhood(g, k, jitter, seed)
	if err != nil {
		return nil, fmt.Errorf("neighborhood phase: %w", err)
	}
	res.KHop, res.PhaseStats[0] = khop, stats

	cent, index, stats, err := runCentrality(g, l, khop, jitter, seed+1)
	if err != nil {
		return nil, fmt.Errorf("centrality phase: %w", err)
	}
	res.Cent, res.Index, res.PhaseStats[1] = cent, index, stats

	sites, stats, err := runElection(g, scope, index, jitter, seed+2)
	if err != nil {
		return nil, fmt.Errorf("election phase: %w", err)
	}
	res.Sites, res.PhaseStats[2] = sites, stats

	records, stats, err := runVoronoi(g, sites, alpha, jitter, seed+3)
	if err != nil {
		return nil, fmt.Errorf("voronoi phase: %w", err)
	}
	res.Records, res.PhaseStats[3] = records, stats
	return res, nil
}
