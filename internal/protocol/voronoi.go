package protocol

import (
	"bfskel/internal/core"
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// siteAnnounce carries one site's flood wavefront with its hop counter.
type siteAnnounce struct {
	Site int32
	Dist int32
}

// voronoiBatch is one transmission's set of new or improved site records
// (the generic-payload form; the program transmits kindVoronoiBatch packed
// words but still accepts this shape on receive).
type voronoiBatch struct {
	Entries []siteAnnounce
}

// voronoiProgram implements the Voronoi cell construction (paper
// Sec. III-B): the sites flood simultaneously; every node keeps its nearest
// site(s), records any site whose distance is within Alpha of the nearest,
// remembers the reverse-path parent, and forwards each new or improved
// record once. Distances travel in the payload, and improved (shorter)
// arrivals update and re-forward, so the final records equal the
// centralized pruned multi-source BFS even when message timing is jittered;
// when the nearest distance shrinks, records that fall out of the Alpha
// window are dropped.
// Batches travel as kindVoronoiBatch packed words — one word per
// (site, dist) entry.
type voronoiProgram struct {
	alpha   int32
	site    bool
	dmin    int32
	records []record
	words   []uint64 // scratch: this step's re-forward batch
}

// record is a recorded site with its distance and reverse-path parent.
type record struct {
	site   int32
	dist   int32
	parent int32
}

var _ simnet.Program = (*voronoiProgram)(nil)

func (p *voronoiProgram) Init(ctx *simnet.Context) {
	p.dmin = -1
	p.words = make([]uint64, 0, 16) // one alloc up front beats append growth
	if p.site {
		p.dmin = 0
		p.records = append(p.records, record{site: int32(ctx.ID()), dist: 0, parent: int32(ctx.ID())})
		p.words = append(p.words[:0], packPair(int32(ctx.ID()), 0))
		ctx.BroadcastPacked(kindVoronoiBatch, p.words)
	}
}

func (p *voronoiProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	p.words = p.words[:0]
	for _, env := range inbox {
		if kind, ws, ok := env.Packed(); ok {
			if kind != kindVoronoiBatch {
				continue
			}
			for _, w := range ws {
				site, dist := unpackPair(w)
				p.learn(site, dist, int32(env.From))
			}
			continue
		}
		batch, ok := env.Payload.(voronoiBatch)
		if !ok {
			continue
		}
		for _, a := range batch.Entries {
			p.learn(a.Site, a.Dist, int32(env.From))
		}
	}
	if len(p.words) > 0 {
		ctx.BroadcastPacked(kindVoronoiBatch, p.words)
	}
}

// learn applies the Alpha-window accept/drop rule to one announced (site,
// dist) wavefront entry and queues accepted entries for re-forwarding.
func (p *voronoiProgram) learn(site, dist, from int32) {
	d := dist + 1
	if p.dmin != -1 && d > p.dmin+p.alpha {
		return
	}
	if !p.accept(site, d, from) {
		return
	}
	if p.dmin == -1 || d < p.dmin {
		p.dmin = d
		p.dropStale()
	}
	p.words = append(p.words, packPair(site, d))
}

// accept records or improves the (site, dist) entry; it reports whether the
// entry was new or shorter than what was known.
func (p *voronoiProgram) accept(site, dist, parent int32) bool {
	for i := range p.records {
		if p.records[i].site != site {
			continue
		}
		if p.records[i].dist <= dist {
			return false
		}
		p.records[i].dist = dist
		p.records[i].parent = parent
		return true
	}
	p.records = append(p.records, record{site: site, dist: dist, parent: parent})
	return true
}

// dropStale removes records outside the Alpha window after dmin shrank.
func (p *voronoiProgram) dropStale() {
	kept := p.records[:0]
	for _, r := range p.records {
		if r.dist <= p.dmin+p.alpha {
			kept = append(kept, r)
		}
	}
	p.records = kept
}

// runVoronoi executes the Voronoi flooding phase.
func runVoronoi(g *graph.Graph, sites []int32, alpha int32, po phaseOpts) ([][]core.SiteDist, simnet.Stats, error) {
	isSite := make([]bool, g.N())
	for _, s := range sites {
		isSite[s] = true
	}
	programs := make([]simnet.Program, g.N())
	nodes := make([]*voronoiProgram, g.N())
	for v := range programs {
		nodes[v] = &voronoiProgram{alpha: alpha, site: isSite[v]}
		programs[v] = nodes[v]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		return nil, simnet.Stats{}, err
	}
	po.configure(sim)
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	records := make([][]core.SiteDist, g.N())
	for v, p := range nodes {
		for _, r := range p.records {
			records[v] = append(records[v], core.SiteDist{Site: r.site, D: r.dist, Parent: r.parent})
		}
	}
	return records, stats, nil
}
