package protocol_test

import (
	"math"
	"testing"

	"bfskel/internal/core"
	"bfskel/internal/deploy"
	"bfskel/internal/graph"
	"bfskel/internal/protocol"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// buildNetwork builds a jittered-grid UDG test network restricted to its
// largest component, mirroring the facade's construction.
func buildNetwork(t testing.TB, shapeName string, n int, deg float64, seed int64) *graph.Graph {
	t.Helper()
	shape := shapes.MustByName(shapeName)
	spacing := math.Sqrt(shape.Poly.Area() / float64(n))
	pts := deploy.PerturbedGrid(shape.Poly, spacing, 0.45*spacing, seed)
	r := math.Sqrt(deg * shape.Poly.Area() / (math.Pi * float64(len(pts))))
	for iter := 0; iter < 4; iter++ {
		g := graph.Build(pts, radio.UDG{R: r}, seed)
		if actual := g.AvgDegree(); actual > 0 {
			if math.Abs(actual-deg)/deg < 0.01 {
				break
			}
			r *= math.Sqrt(deg / actual)
		} else {
			r *= 1.5
		}
	}
	g := graph.Build(pts, radio.UDG{R: r}, seed)
	sub, _ := g.Subgraph(g.LargestComponent())
	return sub
}

// TestMatchesCentralized cross-checks the distributed phases against the
// centralized pipeline: identical K-hop sizes, indices, elected sites, and
// Voronoi records (up to the reverse-path parent, where several shortest
// paths are equally valid).
func TestMatchesCentralized(t *testing.T) {
	g := buildNetwork(t, "window", 1200, 7, 3)
	params := core.DefaultParams()
	want, err := core.Extract(g, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := protocol.Run(g, want.EffectiveK, params.L, want.EffectiveScope, params.Alpha)
	if err != nil {
		t.Fatal(err)
	}

	for v := range got.KHop {
		if got.KHop[v] != want.KHopSize[v] {
			t.Fatalf("node %d: distributed |N_k| = %d, centralized %d", v, got.KHop[v], want.KHopSize[v])
		}
		if got.Index[v] != want.Index[v] {
			t.Fatalf("node %d: distributed index = %v, centralized %v", v, got.Index[v], want.Index[v])
		}
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("distributed sites = %d, centralized %d", len(got.Sites), len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i] != want.Sites[i] {
			t.Fatalf("site %d: distributed %d, centralized %d", i, got.Sites[i], want.Sites[i])
		}
	}
	for v := range got.Records {
		if !sameRecordSet(got.Records[v], want.Records[v]) {
			t.Fatalf("node %d: distributed records %v, centralized %v", v, got.Records[v], want.Records[v])
		}
	}
}

// sameRecordSet compares records as {site, dist} sets.
func sameRecordSet(a, b []core.SiteDist) bool {
	if len(a) != len(b) {
		return false
	}
	type key struct {
		site, d int32
	}
	set := make(map[key]int, len(a))
	for _, r := range a {
		set[key{r.Site, r.D}]++
	}
	for _, r := range b {
		set[key{r.Site, r.D}]--
	}
	for _, c := range set {
		if c != 0 {
			return false
		}
	}
	return true
}

// TestMessageComplexity verifies the paper's Sec. V-A claim: the total
// transmissions stay within a constant factor of (k+l+1)n, and the rounds
// grow sub-linearly in n.
func TestMessageComplexity(t *testing.T) {
	params := core.DefaultParams()
	type row struct {
		n, messages, rounds int
	}
	var rows []row
	for _, n := range []int{600, 1200, 2400} {
		g := buildNetwork(t, "window", n, 7, 1)
		want, err := core.Extract(g, params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := protocol.Run(g, want.EffectiveK, params.L, want.EffectiveScope, params.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row{n: g.N(), messages: got.TotalMessages(), rounds: got.TotalRounds()})
	}
	for _, r := range rows {
		bound := (params.K + params.L + 1) * r.n
		t.Logf("n=%d messages=%d bound=(k+l+1)n=%d ratio=%.2f rounds=%d sqrt(n)=%.1f",
			r.n, r.messages, bound, float64(r.messages)/float64(bound), r.rounds, math.Sqrt(float64(r.n)))
		// The set-broadcast realisation costs at most ~2 transmissions per
		// node per flooding round plus the election and Voronoi phases.
		if r.messages > 3*bound {
			t.Errorf("n=%d: %d messages exceeds 3x the (k+l+1)n bound %d", r.n, r.messages, bound)
		}
	}
	// Messages must scale linearly: doubling n should not much more than
	// double the messages.
	growth := float64(rows[2].messages) / float64(rows[0].messages)
	nGrowth := float64(rows[2].n) / float64(rows[0].n)
	if growth > 1.5*nGrowth {
		t.Errorf("message growth %.2f exceeds 1.5x node growth %.2f", growth, nGrowth)
	}
}

// TestJitterExactness: with per-message delivery jitter the protocols'
// outputs must be identical to the synchronous run — the hop counters in
// the payloads, minimum-hop re-forwarding and Alpha-window corrections make
// the phases timing-independent.
func TestJitterExactness(t *testing.T) {
	g := buildNetwork(t, "smile", 1200, 7, 5)
	params := core.DefaultParams()
	sync, err := protocol.Run(g, params.K, params.L, params.Scope(), params.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, jitter := range []int{1, 3} {
		jittered, err := protocol.RunJittered(g, params.K, params.L, params.Scope(), params.Alpha, jitter, 99)
		if err != nil {
			t.Fatal(err)
		}
		for v := range sync.KHop {
			if sync.KHop[v] != jittered.KHop[v] {
				t.Fatalf("jitter %d: khop[%d] = %d, sync %d", jitter, v, jittered.KHop[v], sync.KHop[v])
			}
			if sync.Index[v] != jittered.Index[v] {
				t.Fatalf("jitter %d: index[%d] differs", jitter, v)
			}
		}
		if len(sync.Sites) != len(jittered.Sites) {
			t.Fatalf("jitter %d: %d sites, sync %d", jitter, len(jittered.Sites), len(sync.Sites))
		}
		for i := range sync.Sites {
			if sync.Sites[i] != jittered.Sites[i] {
				t.Fatalf("jitter %d: site %d differs", jitter, i)
			}
		}
		for v := range sync.Records {
			if !sameRecordSet(sync.Records[v], jittered.Records[v]) {
				t.Fatalf("jitter %d: records differ at node %d:\n sync %v\n jit  %v",
					jitter, v, sync.Records[v], jittered.Records[v])
			}
		}
		// Jitter stretches time and may cost extra corrective messages.
		if jittered.TotalRounds() < sync.TotalRounds() {
			t.Errorf("jitter %d finished faster than synchronous?", jitter)
		}
		t.Logf("jitter=%d: msgs %d (sync %d), rounds %d (sync %d)",
			jitter, jittered.TotalMessages(), sync.TotalMessages(), jittered.TotalRounds(), sync.TotalRounds())
	}
}
