package localsep

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
)

// skelPrint flattens a result into a comparable string: separator set plus
// the full skeleton adjacency.
func skelPrint(res *Result) string {
	var sb []byte
	sb = append(sb, fmt.Sprintf("seps=%v\n", res.SeparatorNodes)...)
	for _, v := range res.Skeleton.Nodes() {
		nbrs := append([]int32(nil), res.Skeleton.Neighbors(v)...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		sb = append(sb, fmt.Sprintf("%d: %v\n", v, nbrs)...)
	}
	return string(sb)
}

func TestExtractFindsSkeleton(t *testing.T) {
	for _, shape := range []string{"window", "twoholes", "spiral"} {
		net := nettest.Grid(shape, 1500, 7.0, 1)
		res := Extract(net.Graph, Options{})
		if len(res.SeparatorNodes) == 0 {
			t.Errorf("%s: no separator nodes found", shape)
		}
		if res.Skeleton.NumNodes() == 0 {
			t.Errorf("%s: empty skeleton", shape)
		}
		for i := 1; i < len(res.SeparatorNodes); i++ {
			if res.SeparatorNodes[i-1] >= res.SeparatorNodes[i] {
				t.Fatalf("%s: SeparatorNodes not strictly sorted at %d", shape, i)
			}
		}
	}
}

func TestExtractDeterministicUnderParallelism(t *testing.T) {
	net := nettest.Grid("twoholes", 1500, 7.0, 1)
	want := skelPrint(Extract(net.Graph, Options{}))
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if got := skelPrint(Extract(net.Graph, Options{})); got != want {
		t.Error("result differs between GOMAXPROCS settings")
	}
}

func TestKernelEquivalence(t *testing.T) {
	net := nettest.Grid("window", 1500, 7.0, 1)
	walker := Extract(net.Graph, Options{Kernel: graph.KernelWalker})
	batched := Extract(net.Graph, Options{Kernel: graph.KernelBatched})
	if got, want := skelPrint(batched), skelPrint(walker); got != want {
		t.Error("walker and batched ball-growth kernels disagree")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Radius != 4 || o.MinComp != 2 || o.PruneLen != 3 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if o.Fraction != 0.7 {
		t.Errorf("Fraction default = %v", o.Fraction)
	}
}
