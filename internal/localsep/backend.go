package localsep

import (
	"bfskel/internal/graph"
	"bfskel/internal/obs"
	"bfskel/internal/skeleton"
)

func init() { skeleton.Register(backend{}) }

// backend exposes local-separator skeletonization behind the registry seam.
// Unlike MAP/CASE it declares no boundary dependency: the separator test is
// purely connectivity-based, making it the one alternative backend in the
// same boundary-free class as the paper's pipeline.
type backend struct {
	// Opts configures the backend; the zero value uses the defaults, with
	// Radius and Kernel overridden from skeleton.Params when set there.
	Opts Options
}

// Name implements skeleton.Backend.
func (backend) Name() string { return "localsep" }

// Capabilities implements skeleton.Backend: boundary-free, but the shell
// test gives no segmentation and no homotopy guarantee.
func (backend) Capabilities() skeleton.Capabilities {
	return skeleton.Capabilities{}
}

// Extract implements skeleton.Backend. The ball radius follows the
// pipeline's K and the flood kernel follows the core selection, so the
// scorecard compares backends under one knob set.
func (bk backend) Extract(g *graph.Graph, p skeleton.Params) (*skeleton.Result, *skeleton.Stats, error) {
	run := skeleton.NewRun(p, bk.Name(), g)
	opts := bk.Opts
	ec := p.EffectiveCore()
	if opts.Radius == 0 {
		opts.Radius = ec.K
	}
	if opts.Kernel == graph.KernelAuto {
		opts.Kernel = ec.FloodKernel
	}
	res := extractStaged(g, opts, run.Hook())
	stats := run.Finish(
		obs.Int("separators", len(res.SeparatorNodes)),
		obs.Int("skelNodes", res.Skeleton.NumNodes()))
	out := &skeleton.Result{
		Backend:  bk.Name(),
		Nodes:    res.Skeleton.Nodes(),
		Skeleton: res.Skeleton,
		Stats:    stats,
		Native:   res,
	}
	return out, stats, nil
}
