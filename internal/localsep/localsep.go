// Package localsep implements skeletonization via local separators
// (Bærentzen & Rotenberg, "Skeletonization via local separators") mapped
// onto the hop graph of a sensor network. The original algorithm grows a
// ball around each vertex and tests whether a small set around the vertex
// separates the ball; here the ball is the R-hop neighborhood and the test
// asks whether the ball's shell (the nodes at exactly r hops, r <= R)
// splits into two or more components once the interior B_{r-1} is treated
// as the separator. Interior nodes of a wide region see a connected
// annulus; nodes across a corridor, between holes, or along any narrow
// feature see the shell cut into opposite arcs — exactly the medial
// structure. Like the paper's own pipeline (and unlike MAP/CASE), the
// construction is boundary-free: it consumes nothing but connectivity.
package localsep

import (
	"runtime"
	"sort"

	"bfskel/internal/core"
	"bfskel/internal/graph"
)

// Options configures the backend.
type Options struct {
	// Radius is the maximal ball radius R; the separator test runs at
	// every shell radius 2..R and flags the node when any of them splits
	// (default 4, matching the pipeline's K).
	Radius int
	// Fraction is the boundary-band prefilter: nodes whose |N_R| falls
	// below Fraction x the field median are skipped — near the boundary
	// the shell cannot wrap, so the test only costs sweeps there
	// (default 0.7; negative disables).
	Fraction float64
	// MinComp is the minimum shell-component size that counts toward the
	// separator test, suppressing single-node sampling artifacts
	// (default 2).
	MinComp int
	// ThinOff disables ridge thinning. By default the band of separator
	// nodes is thinned to the nodes whose |N_R| is maximal among their
	// separator neighbors — the hop-graph analogue of selecting minimal
	// separators — so the skeleton follows the corridor ridge instead of
	// filling the band.
	ThinOff bool
	// PruneLen trims leaf skeleton branches shorter than this many hops
	// (default 3).
	PruneLen int
	// Kernel selects the BFS implementation behind the ball-growth pass
	// (the MS-BFS batched kernel on large frozen graphs under KernelAuto).
	Kernel graph.Kernel
}

func (o Options) withDefaults() Options {
	if o.Radius <= 0 {
		o.Radius = 4
	}
	if o.Radius < 2 {
		o.Radius = 2
	}
	if o.Fraction == 0 {
		o.Fraction = 0.7
	}
	if o.MinComp <= 0 {
		o.MinComp = 2
	}
	if o.PruneLen <= 0 {
		o.PruneLen = 3
	}
	return o
}

// Result is the extracted skeleton with its intermediate artifacts.
type Result struct {
	// Radius echoes the effective ball radius R.
	Radius int
	// BallSize is |N_R| per node, computed by the ball-growth pass.
	BallSize []int
	// SeparatorNodes are the nodes whose shell split at some radius,
	// after thinning, sorted by ID.
	SeparatorNodes []int32
	// Skeleton is the connected, pruned structure.
	Skeleton *core.Skeleton
}

// Extract runs local-separator skeletonization on the hop graph.
func Extract(g *graph.Graph, opts Options) *Result {
	return extractStaged(g, opts, func(_ string, fn func()) { fn() })
}

// extractStaged is the pipeline split into named stages, each run through
// the given hook — inline for Extract, timed under the registry backend.
func extractStaged(g *graph.Graph, opts Options, stage func(name string, fn func())) *Result {
	opts = opts.withDefaults()
	n := g.N()
	res := &Result{Radius: opts.Radius}

	// Ball growth: cumulative |N_r| profiles for every node through the
	// flood kernel (bit-parallel MS-BFS on large frozen graphs). The
	// profile's top radius is the prefilter statistic.
	var cut float64
	stage("balls", func() {
		rows := make([][]int, n)
		flat := make([]int, n*opts.Radius)
		for v := range rows {
			rows[v] = flat[v*opts.Radius : (v+1)*opts.Radius : (v+1)*opts.Radius]
		}
		g.BallSizesIntoKernel(opts.Kernel, opts.Radius, rows, nil, nil)
		res.BallSize = make([]int, n)
		for v := range rows {
			res.BallSize[v] = rows[v][opts.Radius-1]
		}
		cut = opts.Fraction * float64(median(res.BallSize))
	})

	// Separator test, chunk-parallel over nodes (per-node writes only).
	isSep := make([]bool, n)
	stage("separators", func() {
		graph.ParallelChunks(n, runtime.GOMAXPROCS(0), func(_, lo, hi int) {
			w := graph.NewWalker(g)
			s := newSepScratch(n)
			for v := lo; v < hi; v++ {
				if g.Degree(v) == 0 || float64(res.BallSize[v]) < cut {
					continue
				}
				isSep[v] = s.separates(g, w, v, opts)
			}
		})
	})

	// Ridge thinning: keep band nodes whose ball is maximal among their
	// separator neighbors (reads isSep, writes thinned — order-free).
	stage("thin", func() {
		member := isSep
		if !opts.ThinOff {
			member = make([]bool, n)
			for v := 0; v < n; v++ {
				if !isSep[v] {
					continue
				}
				keep := true
				for _, u := range g.Neighbors(v) {
					if isSep[u] && res.BallSize[u] > res.BallSize[v] {
						keep = false
						break
					}
				}
				member[v] = keep
			}
		}
		isSep = member
		for v := 0; v < n; v++ {
			if isSep[v] {
				res.SeparatorNodes = append(res.SeparatorNodes, int32(v))
			}
		}
	})

	// Connect within two hops and prune stub branches.
	stage("connect", func() {
		res.Skeleton = core.NewSkeleton(n)
		core.ConnectWithin2(g, isSep, res.Skeleton)
		core.PruneLeafBranches(res.Skeleton, opts.PruneLen)
	})
	return res
}

// median returns the middle element of a copy of xs (0 for empty input).
func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	return sorted[len(sorted)/2]
}

// sepScratch is one worker's reusable state for the shell-component test.
// Arrays are indexed by node and validated against epochs, so a sweep
// clears in O(visited) without touching the whole array.
type sepScratch struct {
	mark      []int32 // ball-sweep epoch the node was last reached in
	dist      []int32 // hop distance from the center (valid when mark matches)
	comp      []int32 // component epoch the shell node was last labelled in
	ball      []int32 // visited nodes of the current ball, in BFS order
	shl       []int32 // shell nodes of the current radius
	que       []int32 // labelling queue
	ballEpoch int32
	compEpoch int32
}

func newSepScratch(n int) *sepScratch {
	return &sepScratch{
		mark: make([]int32, n),
		dist: make([]int32, n),
		comp: make([]int32, n),
	}
}

// separates reports whether v's shell splits into >= 2 components of at
// least MinComp nodes at any radius 2..Radius. One truncated BFS collects
// the ball; each radius then labels its shell using only shell nodes and
// single bridges through distance r-1 nodes (the separator boundary),
// which tolerates sampling gaps without reconnecting across the corridor.
func (s *sepScratch) separates(g *graph.Graph, w *graph.Walker, v int, opts Options) bool {
	s.ballEpoch++
	s.ball = s.ball[:0]
	s.mark[v] = s.ballEpoch
	s.dist[v] = 0
	w.Walk(v, opts.Radius, func(u, d int32) {
		s.mark[u] = s.ballEpoch
		s.dist[u] = d
		s.ball = append(s.ball, u)
	})
	for r := int32(2); r <= int32(opts.Radius); r++ {
		s.shl = s.shl[:0]
		for _, u := range s.ball {
			if s.dist[u] == r {
				s.shl = append(s.shl, u)
			}
		}
		if len(s.shl) < 2*opts.MinComp {
			continue
		}
		comps := 0
		s.compEpoch++
		for _, u := range s.shl {
			if s.comp[u] == s.compEpoch {
				continue
			}
			if s.labelFrom(g, u, r) >= opts.MinComp {
				comps++
				if comps >= 2 {
					return true
				}
			}
		}
	}
	return false
}

// labelFrom labels the shell component containing start (shell = ball nodes
// at distance r) and returns its size. Two shell nodes are connected when
// adjacent, or when they share a neighbor at distance r-1 or r inside the
// ball (a single bridge across a sampling gap).
func (s *sepScratch) labelFrom(g *graph.Graph, start int32, r int32) int {
	s.que = s.que[:0]
	s.que = append(s.que, start)
	s.comp[start] = s.compEpoch
	size := 1
	for head := 0; head < len(s.que); head++ {
		u := s.que[head]
		for _, w := range g.Neighbors(int(u)) {
			if s.mark[w] != s.ballEpoch {
				continue
			}
			switch s.dist[w] {
			case r:
				if s.comp[w] != s.compEpoch {
					s.comp[w] = s.compEpoch
					s.que = append(s.que, w)
					size++
				}
			case r - 1:
				// w sits on the separator boundary: bridge through it to
				// shell nodes one hop beyond, without counting w. Nodes
				// deeper inside — or beyond the shell — do not connect.
				for _, x := range g.Neighbors(int(w)) {
					if s.mark[x] == s.ballEpoch && s.dist[x] == r && s.comp[x] != s.compEpoch {
						s.comp[x] = s.compEpoch
						s.que = append(s.que, x)
						size++
					}
				}
			}
		}
	}
	return size
}
