// Package deploy places sensor nodes inside a deployment field. It provides
// the uniform-at-random deployment assumed throughout the paper (Sec. II-A)
// and the skewed distributions of Fig. 8. All generators are deterministic
// given a seed.
package deploy

import (
	"errors"
	"fmt"
	"math/rand"

	"bfskel/internal/geom"
)

// ErrNoCapacity is returned when rejection sampling cannot place the
// requested number of nodes (e.g. a degenerate region).
var ErrNoCapacity = errors.New("deploy: region too small for requested node count")

// maxRejectionFactor bounds rejection sampling: we allow this many candidate
// draws per accepted node before giving up.
const maxRejectionFactor = 10000

// Uniform places n nodes uniformly at random inside the polygon, using
// rejection sampling from the bounding box.
func Uniform(pg *geom.Polygon, n int, seed int64) ([]geom.Point, error) {
	return Weighted(pg, n, seed, nil)
}

// Weighted places n nodes inside the polygon with acceptance probability
// accept(p) at each candidate location (accept == nil means uniform). The
// resulting density at p is proportional to accept(p). This implements the
// skewed nodal distributions of Fig. 8.
func Weighted(pg *geom.Polygon, n int, seed int64, accept func(geom.Point) float64) ([]geom.Point, error) {
	if n <= 0 {
		return nil, fmt.Errorf("deploy: node count must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed)) //lint:allow determinism seeded by caller; deployments are reproducible per seed
	b := pg.Bounds()
	out := make([]geom.Point, 0, n)
	budget := n * maxRejectionFactor
	for len(out) < n && budget > 0 {
		budget--
		p := geom.Pt(
			b.Min.X+rng.Float64()*b.Width(),
			b.Min.Y+rng.Float64()*b.Height(),
		)
		if !pg.Contains(p) {
			continue
		}
		if accept != nil && rng.Float64() >= accept(p) {
			continue
		}
		out = append(out, p)
	}
	if len(out) < n {
		return nil, ErrNoCapacity
	}
	return out, nil
}

// Thin keeps each point of a deployment independently with probability
// keep(p), reproducing the "sample drawn from" construction of Fig. 8.
func Thin(pts []geom.Point, seed int64, keep func(geom.Point) float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed)) //lint:allow determinism seeded by caller; deployments are reproducible per seed
	var out []geom.Point
	for _, p := range pts {
		if rng.Float64() < keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// VerticalGradient returns an acceptance function that varies linearly from
// bottomProb at y=minY to topProb at y=maxY — Fig. 8(a)'s "upper part denser
// than the lower part".
func VerticalGradient(minY, maxY, bottomProb, topProb float64) func(geom.Point) float64 {
	span := maxY - minY
	return func(p geom.Point) float64 {
		if span <= 0 {
			return topProb
		}
		t := (p.Y - minY) / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return bottomProb + t*(topProb-bottomProb)
	}
}

// HalfPlane returns an acceptance function that is leftProb for x < splitX
// and rightProb otherwise — Fig. 8(b)'s construction (left part kept with
// probability 0.65, right part with probability 1.0).
func HalfPlane(splitX, leftProb, rightProb float64) func(geom.Point) float64 {
	return func(p geom.Point) float64 {
		if p.X < splitX {
			return leftProb
		}
		return rightProb
	}
}

// PerturbedGrid places nodes on a regular grid with the given spacing,
// jittered by at most jitter in each coordinate, keeping only points inside
// the polygon. Useful for deterministic low-variance test networks.
func PerturbedGrid(pg *geom.Polygon, spacing, jitter float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed)) //lint:allow determinism seeded by caller; deployments are reproducible per seed
	b := pg.Bounds()
	var out []geom.Point
	for y := b.Min.Y + spacing/2; y < b.Max.Y; y += spacing {
		for x := b.Min.X + spacing/2; x < b.Max.X; x += spacing {
			p := geom.Pt(
				x+(rng.Float64()*2-1)*jitter,
				y+(rng.Float64()*2-1)*jitter,
			)
			if pg.Contains(p) {
				out = append(out, p)
			}
		}
	}
	return out
}
