package deploy_test

import (
	"testing"

	"bfskel/internal/deploy"
	"bfskel/internal/geom"
	"bfskel/internal/shapes"
)

func square(side float64) *geom.Polygon {
	return geom.MustPolygon(geom.Ring{
		geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side),
	})
}

func TestUniformCountAndContainment(t *testing.T) {
	pg := square(50)
	pts, err := deploy.Uniform(pg, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 500 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !pg.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	pg := square(50)
	a, _ := deploy.Uniform(pg, 100, 7)
	b, _ := deploy.Uniform(pg, 100, 7)
	c, _ := deploy.Uniform(pg, 100, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical deployments")
	}
}

func TestUniformErrors(t *testing.T) {
	pg := square(50)
	if _, err := deploy.Uniform(pg, 0, 1); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := deploy.Uniform(pg, -5, 1); err == nil {
		t.Error("negative n should error")
	}
}

func TestWeightedSkew(t *testing.T) {
	pg := square(100)
	grad := deploy.VerticalGradient(0, 100, 0.2, 1.0)
	pts, err := deploy.Weighted(pg, 4000, 3, grad)
	if err != nil {
		t.Fatal(err)
	}
	var lower, upper int
	for _, p := range pts {
		if p.Y < 50 {
			lower++
		} else {
			upper++
		}
	}
	if upper <= lower*3/2 {
		t.Errorf("gradient not skewed: lower=%d upper=%d", lower, upper)
	}
}

func TestHalfPlane(t *testing.T) {
	accept := deploy.HalfPlane(50, 0.65, 1.0)
	if got := accept(geom.Pt(10, 0)); got != 0.65 {
		t.Errorf("left prob = %v", got)
	}
	if got := accept(geom.Pt(90, 0)); got != 1.0 {
		t.Errorf("right prob = %v", got)
	}
}

func TestVerticalGradientClamps(t *testing.T) {
	g := deploy.VerticalGradient(0, 10, 0.2, 0.8)
	if got := g(geom.Pt(0, -5)); got != 0.2 {
		t.Errorf("below range = %v", got)
	}
	if got := g(geom.Pt(0, 15)); got != 0.8 {
		t.Errorf("above range = %v", got)
	}
	if got := g(geom.Pt(0, 5)); got != 0.5 {
		t.Errorf("midpoint = %v", got)
	}
	degenerate := deploy.VerticalGradient(5, 5, 0.2, 0.8)
	if got := degenerate(geom.Pt(0, 5)); got != 0.8 {
		t.Errorf("degenerate span = %v", got)
	}
}

func TestThin(t *testing.T) {
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Pt(float64(i), 0)
	}
	kept := deploy.Thin(pts, 1, func(geom.Point) float64 { return 0.5 })
	if len(kept) < 400 || len(kept) > 600 {
		t.Errorf("kept %d of 1000 at p=0.5", len(kept))
	}
	all := deploy.Thin(pts, 1, func(geom.Point) float64 { return 1 })
	if len(all) != 1000 {
		t.Errorf("p=1 kept %d", len(all))
	}
	none := deploy.Thin(pts, 1, func(geom.Point) float64 { return 0 })
	if len(none) != 0 {
		t.Errorf("p=0 kept %d", len(none))
	}
}

func TestPerturbedGrid(t *testing.T) {
	pg := square(100)
	pts := deploy.PerturbedGrid(pg, 2, 0.9, 1)
	// ~50x50 grid cells => ~2500 interior points.
	if len(pts) < 2300 || len(pts) > 2600 {
		t.Errorf("grid produced %d points", len(pts))
	}
	for _, p := range pts {
		if !pg.Contains(p) {
			t.Fatalf("grid point %v outside region", p)
		}
	}
	// Deterministic.
	again := deploy.PerturbedGrid(pg, 2, 0.9, 1)
	if len(again) != len(pts) || again[0] != pts[0] {
		t.Error("grid not deterministic")
	}
}

// TestWeightedOnAllShapes: every registered field accepts a deployment.
func TestWeightedOnAllShapes(t *testing.T) {
	for _, s := range shapes.All() {
		if _, err := deploy.Uniform(s.Poly, 200, 1); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}
